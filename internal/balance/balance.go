// Package balance solves the paper's workload-balancing problem (§V-B/C):
// choose, for every edge, which incident device represents it in its tree,
// minimizing the maximum per-device workload subject to every edge being
// represented at least once (Eq. 10, proved NP-hard by reduction to min-max
// colored TSP). The approximation has two phases, exactly as in the paper:
//
//  1. Greedy initialization (Alg. 1): a device keeps a neighbor only if the
//     neighbor's rounded log-degree is at least its own; degree comparisons
//     run under the secure comparison protocol so degrees stay hidden.
//  2. MCMC iteration (Alg. 2): Metropolis-Hastings over assignment states —
//     find the max-workload device (Alg. 3, with secure workload
//     comparisons and server tie-breaking), move k ~ U[1, round(ln wl)]
//     branches off it, and accept with probability min(1, e^{f(X)−f(X')}).
//     Theorem 2 bounds the tail probability of a bad final state.
//
// Alg. 3's candidate filter is maintained incrementally: a device's
// candidacy can only change when its own or a neighbor's workload changes,
// and each MCMC transition touches at most 1+k devices, so re-running the
// full quadratic scan every iteration (as the paper's pseudo-code literally
// does) would repeat byte-identical comparisons. The incremental version
// produces the same candidate set with strictly fewer secure comparisons.
package balance

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"lumos/internal/fed"
	"lumos/internal/graph"
	"lumos/internal/smc"
)

// Config controls the balancing run.
type Config struct {
	// Iterations is the MCMC iteration count T (paper: 1000 for Facebook,
	// 300 for LastFM).
	Iterations int
	// Bits is the secure comparator operand width L (default 32).
	Bits int
	// Secure selects the OT-based comparison protocol. When false,
	// comparisons are evaluated in plaintext — results are identical and
	// traffic is still estimated, but no OT work is done; intended for
	// large-scale benchmarks.
	Secure bool
	// Seed drives proposal sampling and server tie-breaks.
	Seed int64
}

// Validate fills defaults.
func (c *Config) Validate() error {
	if c.Iterations < 0 {
		return fmt.Errorf("balance: negative iteration count %d", c.Iterations)
	}
	if c.Bits == 0 {
		c.Bits = 32
	}
	if c.Bits < 8 || c.Bits > 64 {
		return fmt.Errorf("balance: comparator width %d outside [8,64]", c.Bits)
	}
	return nil
}

// Result is the balanced assignment.
type Result struct {
	// Retained[v] lists the neighbors device v keeps in its tree (N_v).
	Retained [][]int
	// Workloads[v] = len(Retained[v]).
	Workloads []int
	// MaxTrace records the maximum workload after every MCMC iteration
	// (index 0 = after greedy initialization).
	MaxTrace []int
	// Accepted counts accepted MH transitions.
	Accepted int
	// SMC is the secure-comparison traffic accumulated by the run.
	SMC smc.Stats
	// ControlMessages counts device↔server coordination messages.
	ControlMessages int
}

// MaxWorkload returns the final objective value f(X).
func (r *Result) MaxWorkload() int {
	mx := 0
	for _, w := range r.Workloads {
		if w > mx {
			mx = w
		}
	}
	return mx
}

// TotalWorkload returns Σ_v wl(v), bounded below by |E| (covering
// constraint) and above by 2|E| (no trimming).
func (r *Result) TotalWorkload() int {
	s := 0
	for _, w := range r.Workloads {
		s += w
	}
	return s
}

// comparer wraps the secure protocol so the plaintext fast path still
// accounts estimated traffic with the same formulas.
type comparer struct {
	proto  *smc.Protocol
	secure bool
}

// estimate accounts one comparison's traffic in plaintext mode: 2L AND
// gates × 2 OTs each plus input sharing and output reveal.
func (c *comparer) estimate() {
	c.proto.Stats.Comparisons++
	c.proto.Stats.OTs += 4 * c.proto.Bits
	c.proto.Stats.Messages += 12*c.proto.Bits + 2*c.proto.Bits + 2
	c.proto.Stats.Bytes += int64(4*c.proto.Bits*18) + 2*int64((c.proto.Bits+7)/8) + 2
}

func (c *comparer) less(alice *smc.Party, a uint64, bob *smc.Party, b uint64) bool {
	if c.secure {
		return c.proto.Less(alice, a, bob, b)
	}
	c.estimate()
	return a < b
}

func (c *comparer) lessOrEqual(alice *smc.Party, a uint64, bob *smc.Party, b uint64) bool {
	if c.secure {
		return c.proto.LessOrEqual(alice, a, bob, b)
	}
	c.estimate()
	return a <= b
}

func (c *comparer) acceptMH(alice *smc.Party, fx float64, bob *smc.Party, fy float64, u float64) bool {
	if c.secure {
		return c.proto.AcceptMH(alice, fx, bob, fy, u)
	}
	c.estimate()
	return math.Log(u) < fx-fy
}

// GreedyInit runs Alg. 1: device u keeps neighbor v iff
// round(ln deg(v)) ≥ round(ln deg(u)), decided by secure comparison of the
// rounded log-degrees. Ties keep the edge on both sides, so the Eq. 10
// covering constraint always holds after initialization.
func GreedyInit(g *graph.Graph, devices []*fed.Device, cmp *comparer) [][]int {
	logDeg := make([]uint64, g.N)
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > 0 {
			logDeg[v] = uint64(math.Round(math.Log(float64(d))))
		}
	}
	retained := make([][]int, g.N)
	for _, e := range g.Edges {
		u, v := e[0], e[1]
		// u keeps v iff logDeg[u] ≤ logDeg[v]; v keeps u symmetrically.
		if cmp.lessOrEqual(devices[u].Party, logDeg[u], devices[v].Party, logDeg[v]) {
			retained[u] = append(retained[u], v)
		}
		if cmp.lessOrEqual(devices[v].Party, logDeg[v], devices[u].Party, logDeg[u]) {
			retained[v] = append(retained[v], u)
		}
	}
	return retained
}

// WithoutTrimming returns the untrimmed assignment used by the
// "Lumos w.o. TT" ablation: every device keeps its full neighbor set, so
// workload equals degree.
func WithoutTrimming(g *graph.Graph) *Result {
	r := &Result{
		Retained:  make([][]int, g.N),
		Workloads: make([]int, g.N),
	}
	for v := 0; v < g.N; v++ {
		r.Retained[v] = append([]int(nil), g.Adj[v]...)
		r.Workloads[v] = len(g.Adj[v])
	}
	r.MaxTrace = []int{r.MaxWorkload()}
	return r
}

// Balance runs greedy initialization followed by cfg.Iterations MCMC steps.
// The server coordinates Alg. 3 but never learns a workload value — only
// candidate announcements and comparison outcomes.
func Balance(g *graph.Graph, devices []*fed.Device, server *fed.Server, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(devices) != g.N {
		return nil, fmt.Errorf("balance: %d devices for %d vertices", len(devices), g.N)
	}
	stats := &smc.Stats{}
	cmp := &comparer{proto: smc.NewProtocol(cfg.Bits, stats), secure: cfg.Secure}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x42616c616e636572))

	st := newState(g, GreedyInit(g, devices, cmp))
	res := &Result{MaxTrace: []int{st.maxWorkload()}}

	for t := 0; t < cfg.Iterations; t++ {
		u := st.findMaxDevice(devices, server, cmp, res)
		if u < 0 || st.wl[u] == 0 {
			res.MaxTrace = append(res.MaxTrace, st.maxWorkload())
			continue
		}
		fx := float64(st.wl[u]) // f(X_t): the current maximum workload
		// Device u samples the step size k ∈ [1, round(ln wl(u))] (Alg. 2
		// line 3) and k distinct members of N_u (line 4).
		kMax := int(math.Round(math.Log(float64(st.wl[u]))))
		if kMax < 1 {
			kMax = 1
		}
		k := 1 + devices[u].Rng.Intn(kMax)
		if k > st.wl[u] {
			k = st.wl[u]
		}
		moved := st.sampleNeighbors(u, k, devices[u].Rng)
		tr := st.apply(u, moved)
		res.ControlMessages += len(moved) // u notifies each moved device

		uPrime := st.findMaxDevice(devices, server, cmp, res)
		fy := float64(st.wl[uPrime]) // f(X'_t)
		if cmp.acceptMH(devices[u].Party, fx, devices[uPrime].Party, fy, 1-rng.Float64()) {
			res.Accepted++
		} else {
			st.revert(tr)
			res.ControlMessages += len(moved) // rollback notifications
		}
		res.MaxTrace = append(res.MaxTrace, st.maxWorkload())
	}

	res.Retained = st.retainedSlices()
	res.Workloads = append([]int(nil), st.wl...)
	res.SMC = *stats
	return res, nil
}

// state maintains the assignment, workloads, and the incrementally
// maintained candidate structure for Alg. 3.
type state struct {
	g        *graph.Graph
	retained []map[int]bool
	wl       []int
	// isCand caches each device's Alg. 3 candidacy (local workload
	// maximum); dirty marks devices whose cache must be refreshed.
	isCand []bool
	dirty  map[int]bool
}

func newState(g *graph.Graph, retained [][]int) *state {
	st := &state{
		g:        g,
		retained: make([]map[int]bool, g.N),
		wl:       make([]int, g.N),
		isCand:   make([]bool, g.N),
		dirty:    make(map[int]bool, g.N),
	}
	for v := 0; v < g.N; v++ {
		st.retained[v] = make(map[int]bool, len(retained[v]))
		for _, u := range retained[v] {
			st.retained[v][u] = true
		}
		st.wl[v] = len(st.retained[v])
		st.dirty[v] = true
	}
	return st
}

func (st *state) maxWorkload() int {
	mx := 0
	for _, w := range st.wl {
		if w > mx {
			mx = w
		}
	}
	return mx
}

// markChanged flags v and its graph neighbors for candidacy recheck.
func (st *state) markChanged(v int) {
	st.dirty[v] = true
	for _, n := range st.g.Adj[v] {
		st.dirty[n] = true
	}
}

// findMaxDevice runs Alg. 3: refresh candidacy of dirty devices via secure
// comparisons with their neighbors, then run a secure tournament among
// candidates with server-side random tie-breaking. Returns -1 only for an
// edgeless graph.
func (st *state) findMaxDevice(devices []*fed.Device, server *fed.Server, cmp *comparer, res *Result) int {
	for v := range st.dirty {
		cand := true
		for _, n := range st.g.Adj[v] {
			// Every neighbor's workload must satisfy wl_n ≤ wl_v.
			if !cmp.lessOrEqual(devices[n].Party, uint64(st.wl[n]), devices[v].Party, uint64(st.wl[v])) {
				cand = false
				break
			}
		}
		st.isCand[v] = cand
	}
	clear(st.dirty)

	var cvs []int
	for v, ok := range st.isCand {
		if ok {
			cvs = append(cvs, v)
		}
	}
	if len(cvs) == 0 {
		return -1
	}
	res.ControlMessages += len(cvs) // candidate announcements
	best := []int{cvs[0]}
	for _, c := range cvs[1:] {
		b := best[0]
		if cmp.less(devices[c].Party, uint64(st.wl[c]), devices[b].Party, uint64(st.wl[b])) {
			continue // c strictly smaller
		}
		if cmp.less(devices[b].Party, uint64(st.wl[b]), devices[c].Party, uint64(st.wl[c])) {
			best = []int{c} // c strictly larger
		} else {
			best = append(best, c) // tie
		}
	}
	res.ControlMessages += len(cvs) // server responses
	return best[server.Rng.Intn(len(best))]
}

// sampleNeighbors draws k distinct members of N_u using device u's private
// randomness, with a deterministic base order for reproducibility.
func (st *state) sampleNeighbors(u, k int, rng *rand.Rand) []int {
	members := make([]int, 0, st.wl[u])
	for v := range st.retained[u] {
		members = append(members, v)
	}
	sort.Ints(members)
	rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
	return members[:k]
}

// transition records what apply changed so revert can restore it exactly.
type transition struct {
	u     int
	moved []int // removed from N_u (all were present)
	added []int // subset of moved where u was newly added to N_v
}

// apply performs the Eq. 17 transition: remove each v from N_u and add u to
// N_v (set semantics — when v already retained u only the removal changes
// workloads, strictly improving the objective contribution).
func (st *state) apply(u int, moved []int) transition {
	tr := transition{u: u, moved: moved}
	for _, v := range moved {
		delete(st.retained[u], v)
		if !st.retained[v][u] {
			st.retained[v][u] = true
			tr.added = append(tr.added, v)
		}
		st.wl[v] = len(st.retained[v])
		st.markChanged(v)
	}
	st.wl[u] = len(st.retained[u])
	st.markChanged(u)
	return tr
}

// revert undoes a rejected transition.
func (st *state) revert(tr transition) {
	for _, v := range tr.moved {
		st.retained[tr.u][v] = true
	}
	for _, v := range tr.added {
		delete(st.retained[v], tr.u)
	}
	for _, v := range tr.moved {
		st.wl[v] = len(st.retained[v])
		st.markChanged(v)
	}
	st.wl[tr.u] = len(st.retained[tr.u])
	st.markChanged(tr.u)
}

func (st *state) retainedSlices() [][]int {
	out := make([][]int, st.g.N)
	for v := range st.retained {
		for u := range st.retained[v] {
			out[v] = append(out[v], u)
		}
		sort.Ints(out[v])
	}
	return out
}

// VerifyCover checks the Eq. 10 covering constraint: every edge of g is
// retained by at least one endpoint. Used by tests and as a postcondition.
func VerifyCover(g *graph.Graph, retained [][]int) error {
	sets := make([]map[int]bool, g.N)
	for v := range retained {
		sets[v] = make(map[int]bool, len(retained[v]))
		for _, u := range retained[v] {
			sets[v][u] = true
		}
	}
	for _, e := range g.Edges {
		u, v := e[0], e[1]
		if !sets[u][v] && !sets[v][u] {
			return fmt.Errorf("balance: edge (%d,%d) uncovered", u, v)
		}
	}
	return nil
}
