package balance

import (
	"math"
	"testing"

	"lumos/internal/fed"
	"lumos/internal/graph"
	"lumos/internal/smc"
)

func testSetup(t *testing.T, n, m int, seed int64) (*graph.Graph, []*fed.Device, *fed.Server) {
	t.Helper()
	g, err := graph.Generate(graph.GenConfig{
		Name: "bal", N: n, M: m, Classes: 2, FeatureDim: 8, PowerLaw: 2.2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, fed.NewDevices(g, seed), fed.NewServer(seed)
}

func TestGreedyInitCoversAndTrims(t *testing.T) {
	g, devices, _ := testSetup(t, 150, 900, 1)
	stats := &smc.Stats{}
	cmp := &comparer{proto: smc.NewProtocol(32, stats), secure: true}
	retained := GreedyInit(g, devices, cmp)
	if err := VerifyCover(g, retained); err != nil {
		t.Fatal(err)
	}
	// Greedy must reduce total workload below the untrimmed 2|E|.
	total := 0
	for _, r := range retained {
		total += len(r)
	}
	if total >= 2*g.NumEdges() {
		t.Fatalf("greedy kept everything: %d ≥ %d", total, 2*g.NumEdges())
	}
	if total < g.NumEdges() {
		t.Fatalf("covering violated in total: %d < %d", total, g.NumEdges())
	}
	// Two secure comparisons per edge.
	if stats.Comparisons != 2*g.NumEdges() {
		t.Fatalf("comparisons = %d, want %d", stats.Comparisons, 2*g.NumEdges())
	}
}

func TestGreedyTrimsHighDegreeSide(t *testing.T) {
	// Star graph: hub 0 with 30 spokes. round(ln 30)=3 > round(ln 1)=0, so
	// the hub must drop every spoke and every spoke keeps the hub.
	edges := make([][2]int, 30)
	for i := range edges {
		edges[i] = [2]int{0, i + 1}
	}
	g, err := graph.NewFromEdges(31, edges, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	devices := fed.NewDevices(g, 1)
	cmp := &comparer{proto: smc.NewProtocol(32, &smc.Stats{}), secure: true}
	retained := GreedyInit(g, devices, cmp)
	if len(retained[0]) != 0 {
		t.Fatalf("hub retained %d spokes, want 0", len(retained[0]))
	}
	for v := 1; v <= 30; v++ {
		if len(retained[v]) != 1 {
			t.Fatalf("spoke %d retained %v", v, retained[v])
		}
	}
}

func TestWithoutTrimmingIsDegrees(t *testing.T) {
	g, _, _ := testSetup(t, 80, 300, 2)
	r := WithoutTrimming(g)
	for v := 0; v < g.N; v++ {
		if r.Workloads[v] != g.Degree(v) {
			t.Fatalf("workload[%d] = %d, degree %d", v, r.Workloads[v], g.Degree(v))
		}
	}
	if r.MaxWorkload() != g.MaxDegree() {
		t.Fatal("max workload must equal max degree")
	}
	if r.TotalWorkload() != 2*g.NumEdges() {
		t.Fatal("untrimmed total must be 2|E|")
	}
}

func TestBalanceReducesMaxWorkload(t *testing.T) {
	g, devices, server := testSetup(t, 200, 1400, 3)
	res, err := Balance(g, devices, server, Config{Iterations: 120, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCover(g, res.Retained); err != nil {
		t.Fatal(err)
	}
	if res.MaxWorkload() >= g.MaxDegree() {
		t.Fatalf("balancing did not beat raw degrees: %d vs %d", res.MaxWorkload(), g.MaxDegree())
	}
	// The paper's Fig. 7: trimmed max should be several times below raw max.
	if float64(res.MaxWorkload()) > 0.6*float64(g.MaxDegree()) {
		t.Fatalf("weak trimming: %d vs max degree %d", res.MaxWorkload(), g.MaxDegree())
	}
	if len(res.MaxTrace) != 121 {
		t.Fatalf("trace length %d", len(res.MaxTrace))
	}
	if res.Workloads[0] != len(res.Retained[0]) {
		t.Fatal("workloads inconsistent with retained sets")
	}
}

func TestBalanceMCMCImprovesOnGreedy(t *testing.T) {
	g, devices, server := testSetup(t, 200, 1400, 4)
	res, err := Balance(g, devices, server, Config{Iterations: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	greedyMax := res.MaxTrace[0]
	finalMax := res.MaxTrace[len(res.MaxTrace)-1]
	if finalMax > greedyMax {
		t.Fatalf("MCMC worsened the objective: %d -> %d", greedyMax, finalMax)
	}
	if res.Accepted == 0 {
		t.Fatal("no transitions accepted in 200 iterations")
	}
}

func TestBalanceSecureMatchesPlaintext(t *testing.T) {
	g, devices, server := testSetup(t, 100, 600, 5)
	resSecure, err := Balance(g, devices, server, Config{Iterations: 40, Secure: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	devices2 := fed.NewDevices(g, 5)
	server2 := fed.NewServer(5)
	resPlain, err := Balance(g, devices2, server2, Config{Iterations: 40, Secure: false, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Comparison outcomes are identical, so the assignments must agree...
	for v := range resSecure.Retained {
		if len(resSecure.Retained[v]) != len(resPlain.Retained[v]) {
			t.Fatalf("device %d: secure %v vs plaintext %v", v, resSecure.Retained[v], resPlain.Retained[v])
		}
		for i := range resSecure.Retained[v] {
			if resSecure.Retained[v][i] != resPlain.Retained[v][i] {
				t.Fatalf("device %d retained sets differ", v)
			}
		}
	}
	// ...and so must the comparison counts (the plaintext path estimates
	// the same protocol).
	if resSecure.SMC.Comparisons != resPlain.SMC.Comparisons {
		t.Fatalf("comparison counts differ: %d vs %d",
			resSecure.SMC.Comparisons, resPlain.SMC.Comparisons)
	}
	if resSecure.SMC.OTs != resPlain.SMC.OTs {
		t.Fatalf("OT accounting differs: %d vs %d", resSecure.SMC.OTs, resPlain.SMC.OTs)
	}
}

func TestBalanceZeroIterationsIsGreedy(t *testing.T) {
	g, devices, server := testSetup(t, 80, 400, 6)
	res, err := Balance(g, devices, server, Config{Iterations: 0, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MaxTrace) != 1 {
		t.Fatalf("trace length %d for 0 iterations", len(res.MaxTrace))
	}
	if err := VerifyCover(g, res.Retained); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceValidation(t *testing.T) {
	g, devices, server := testSetup(t, 80, 400, 7)
	if _, err := Balance(g, devices, server, Config{Iterations: -1}); err == nil {
		t.Fatal("negative iterations must error")
	}
	if _, err := Balance(g, devices[:10], server, Config{}); err == nil {
		t.Fatal("device count mismatch must error")
	}
	if _, err := Balance(g, devices, server, Config{Bits: 4}); err == nil {
		t.Fatal("tiny bit width must error")
	}
}

// TestTheorem2SmallGraphNearOptimal empirically checks the MCMC guarantee:
// on a graph small enough to brute-force, the balanced objective must land
// close to the optimum.
func TestTheorem2SmallGraphNearOptimal(t *testing.T) {
	// K4: 6 edges; optimal min-max assignment gives every vertex ≤ 2.
	var edges [][2]int
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	g, err := graph.NewFromEdges(4, edges, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := bruteForceOptimum(g)
	if opt != 2 {
		t.Fatalf("brute force says optimum %d, expected 2 for K4", opt)
	}
	devices := fed.NewDevices(g, 8)
	server := fed.NewServer(8)
	res, err := Balance(g, devices, server, Config{Iterations: 300, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxWorkload() > opt+1 {
		t.Fatalf("MCMC result %d far from optimum %d", res.MaxWorkload(), opt)
	}
}

// bruteForceOptimum enumerates all feasible 0-1 assignments (each edge to
// one or both endpoints) and returns the minimal maximum workload.
func bruteForceOptimum(g *graph.Graph) int {
	m := len(g.Edges)
	best := math.MaxInt
	// Each edge has 3 feasible states: u-only, v-only, both.
	var rec func(i int, wl []int)
	rec = func(i int, wl []int) {
		if i == m {
			mx := 0
			for _, w := range wl {
				if w > mx {
					mx = w
				}
			}
			if mx < best {
				best = mx
			}
			return
		}
		e := g.Edges[i]
		for _, c := range [][2]int{{1, 0}, {0, 1}, {1, 1}} {
			wl[e[0]] += c[0]
			wl[e[1]] += c[1]
			rec(i+1, wl)
			wl[e[0]] -= c[0]
			wl[e[1]] -= c[1]
		}
	}
	rec(0, make([]int, g.N))
	return best
}

func TestVerifyCoverDetectsViolation(t *testing.T) {
	g, _, _ := testSetup(t, 20, 40, 9)
	retained := make([][]int, g.N) // nothing retained anywhere
	if err := VerifyCover(g, retained); err == nil {
		t.Fatal("expected cover violation")
	}
}
