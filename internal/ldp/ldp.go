// Package ldp implements the local differential privacy mechanisms used by
// Lumos and its baselines:
//
//   - the one-bit mechanism (Ding et al., "Collecting Telemetry Data
//     Privately") with Lumos's per-neighbor bin partitioning and unbiased
//     recovery (paper §VI-A, Eq. 26–27, Theorems 3–4);
//   - a multi-bit variant in the style of LPGNN's feature encoder;
//   - the Gaussian mechanism and (k-ary) randomized response used by the
//     Naive FedGNN baseline to noise features, adjacency, and labels.
//
// All mechanisms take an explicit *rand.Rand so experiments are
// reproducible; nothing in this package touches global randomness.
package ldp

import (
	"fmt"
	"math"
	"math/rand"
)

// OneBit is the one-bit LDP mechanism over values in [A, B] with per-element
// privacy budget Eps: each value is randomized to a single bit whose
// distribution is ε-LDP, then recovered to an unbiased estimate.
type OneBit struct {
	Eps  float64 // per-element privacy budget ε'
	A, B float64 // value bounds
}

// Validate checks the mechanism parameters.
func (m OneBit) Validate() error {
	if m.Eps <= 0 {
		return fmt.Errorf("ldp: one-bit mechanism needs ε > 0, got %v", m.Eps)
	}
	if !(m.B > m.A) {
		return fmt.Errorf("ldp: one-bit bounds [%v,%v] invalid", m.A, m.B)
	}
	return nil
}

// EncodeValue randomizes one value to a bit per Eq. 26:
//
//	Pr[x' = 1] = 1/(e^ε+1) + (x−a)/(b−a) · (e^ε−1)/(e^ε+1)
func (m OneBit) EncodeValue(x float64, rng *rand.Rand) float64 {
	e := math.Exp(m.Eps)
	p := 1/(e+1) + (clamp(x, m.A, m.B)-m.A)/(m.B-m.A)*(e-1)/(e+1)
	if rng.Float64() < p {
		return 1
	}
	return 0
}

// RecoverValue maps an encoded bit back to an unbiased estimate per Eq. 27.
// The sentinel 0.5 ("not transmitted") recovers to the midpoint (a+b)/2,
// which carries no directional information.
func (m OneBit) RecoverValue(bit float64) float64 {
	e := math.Exp(m.Eps)
	switch bit {
	case 1:
		return (m.B-m.A)/2*(e+1)/(e-1) + (m.A+m.B)/2
	case 0:
		return (m.A-m.B)/2*(e+1)/(e-1) + (m.A+m.B)/2
	case 0.5:
		return (m.A + m.B) / 2
	default:
		panic(fmt.Sprintf("ldp: encoded bit %v not in {0, 0.5, 1}", bit))
	}
}

// NotTransmitted is the sentinel used for feature elements outside a
// receiver's bin.
const NotTransmitted = 0.5

// BinPartition randomly distributes d element indices into bins bins of
// near-equal size (sizes differ by at most one), returning bin → element
// indices. Every element lands in exactly one bin, so across all neighbors
// the full feature is transmitted exactly once (paper: "Distributing
// encoded elements ensures that all the feature information are sent to one
// of its neighbors"). Near-equal sizes keep Theorem 4's composition
// accounting (d/wl elements per recipient at ε·wl/d each) exact.
func BinPartition(d, bins int, rng *rand.Rand) [][]int {
	if bins <= 0 {
		panic(fmt.Sprintf("ldp: BinPartition with %d bins", bins))
	}
	perm := rng.Perm(d)
	out := make([][]int, bins)
	for i, idx := range perm {
		k := i % bins
		out[k] = append(out[k], idx)
	}
	return out
}

// FeatureEncoder is Lumos's embedding-initialization encoder for one device:
// the total budget Epsilon is spread as ε·wl/d per transmitted element, the
// d elements are partitioned into wl bins, and neighbor k receives only the
// elements of bin k (others set to NotTransmitted).
type FeatureEncoder struct {
	Epsilon  float64 // total budget ε
	A, B     float64
	Workload int // wl(u): number of neighbors retained after trimming
	Dim      int // d: feature dimensionality
}

// PerElementEps returns ε·wl/d, the budget each transmitted element gets.
func (f FeatureEncoder) PerElementEps() float64 {
	return f.Epsilon * float64(f.Workload) / float64(f.Dim)
}

// Validate checks encoder parameters.
func (f FeatureEncoder) Validate() error {
	if f.Workload <= 0 {
		return fmt.Errorf("ldp: feature encoder needs workload ≥ 1, got %d", f.Workload)
	}
	if f.Dim <= 0 {
		return fmt.Errorf("ldp: feature encoder needs dim ≥ 1, got %d", f.Dim)
	}
	return OneBit{Eps: f.PerElementEps(), A: f.A, B: f.B}.Validate()
}

// Encode produces the wl per-neighbor encoded vectors for feature x.
// Each vector has length d with entries in {0, NotTransmitted, 1}.
func (f FeatureEncoder) Encode(x []float64, rng *rand.Rand) ([][]float64, error) {
	if len(x) != f.Dim {
		return nil, fmt.Errorf("ldp: feature length %d, encoder dim %d", len(x), f.Dim)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	ob := OneBit{Eps: f.PerElementEps(), A: f.A, B: f.B}
	bins := BinPartition(f.Dim, f.Workload, rng)
	out := make([][]float64, f.Workload)
	for k := range out {
		enc := make([]float64, f.Dim)
		for i := range enc {
			enc[i] = NotTransmitted
		}
		for _, i := range bins[k] {
			enc[i] = ob.EncodeValue(x[i], rng)
		}
		out[k] = enc
	}
	return out, nil
}

// Recover maps one received encoded vector to its unbiased estimate
// (Eq. 27); run by the *receiving* device, which knows the public protocol
// parameters (ε, wl of the sender, d, [a,b]) but not the raw feature.
func (f FeatureEncoder) Recover(enc []float64) ([]float64, error) {
	if len(enc) != f.Dim {
		return nil, fmt.Errorf("ldp: encoded length %d, encoder dim %d", len(enc), f.Dim)
	}
	ob := OneBit{Eps: f.PerElementEps(), A: f.A, B: f.B}
	out := make([]float64, f.Dim)
	for i, b := range enc {
		out[i] = ob.RecoverValue(b)
	}
	return out, nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
