package ldp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOneBitValidate(t *testing.T) {
	if err := (OneBit{Eps: 1, A: 0, B: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, m := range []OneBit{{Eps: 0, A: 0, B: 1}, {Eps: -1, A: 0, B: 1}, {Eps: 1, A: 1, B: 1}, {Eps: 1, A: 2, B: 1}} {
		if err := m.Validate(); err == nil {
			t.Fatalf("config %+v must be invalid", m)
		}
	}
}

// TestTheorem3Unbiased verifies the paper's Theorem 3: the recovered
// feature is an unbiased estimator of the original.
func TestTheorem3Unbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := OneBit{Eps: 0.4, A: 0, B: 1}
	for _, x := range []float64{0, 0.2, 0.5, 0.77, 1} {
		const trials = 300000
		sum := 0.0
		for i := 0; i < trials; i++ {
			sum += m.RecoverValue(m.EncodeValue(x, rng))
		}
		mean := sum / trials
		// The recovered scale is (b−a)/2·(e^ε+1)/(e^ε−1) ≈ 2.5 at ε=0.4, so
		// a ±0.03 tolerance is ≈4σ of the sample mean.
		if math.Abs(mean-x) > 0.03 {
			t.Fatalf("recovered mean %v for x=%v (bias %v)", mean, x, mean-x)
		}
	}
}

// TestTheorem4LikelihoodRatio verifies the ε-LDP bound of the one-bit
// encoder: for any two inputs, the probability ratio of any output is
// bounded by e^ε.
func TestTheorem4LikelihoodRatio(t *testing.T) {
	eps := 0.8
	m := OneBit{Eps: eps, A: 0, B: 1}
	e := math.Exp(eps)
	p := func(x float64) float64 { // P[bit=1 | x]
		return 1/(e+1) + x*(e-1)/(e+1)
	}
	for _, x1 := range []float64{0, 0.3, 1} {
		for _, x2 := range []float64{0, 0.7, 1} {
			r1 := p(x1) / p(x2)
			r0 := (1 - p(x1)) / (1 - p(x2))
			if r1 > e+1e-9 || r0 > e+1e-9 {
				t.Fatalf("likelihood ratio %v/%v exceeds e^eps=%v", r1, r0, e)
			}
		}
	}
	_ = m
}

func TestEncodeValueClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := OneBit{Eps: 100, A: 0, B: 1} // near-deterministic at huge ε
	ones := 0
	for i := 0; i < 1000; i++ {
		ones += int(m.EncodeValue(5 /* above B: clamped to 1 */, rng))
	}
	if ones < 990 {
		t.Fatalf("clamped encode of 5 gave %d ones", ones)
	}
}

func TestRecoverValueCases(t *testing.T) {
	m := OneBit{Eps: 1, A: -2, B: 2}
	if got := m.RecoverValue(NotTransmitted); got != 0 {
		t.Fatalf("midpoint recovery = %v, want 0", got)
	}
	hi := m.RecoverValue(1)
	lo := m.RecoverValue(0)
	if hi <= 0 || lo >= 0 || math.Abs(hi+lo) > 1e-12 {
		t.Fatalf("recovery not symmetric: %v / %v", hi, lo)
	}
}

func TestRecoverValuePanicsOnGarbage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OneBit{Eps: 1, A: 0, B: 1}.RecoverValue(0.7)
}

func TestBinPartitionCoversEverythingOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bins := BinPartition(103, 7, rng)
	if len(bins) != 7 {
		t.Fatalf("bins = %d", len(bins))
	}
	seen := make([]int, 103)
	for _, b := range bins {
		for _, i := range b {
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("element %d in %d bins", i, c)
		}
	}
	// Near-equal sizes: 103 = 7*14 + 5 → sizes 14 or 15.
	for k, b := range bins {
		if len(b) != 14 && len(b) != 15 {
			t.Fatalf("bin %d size %d", k, len(b))
		}
	}
}

func TestQuickBinPartition(t *testing.T) {
	f := func(d, bins uint8, seed int64) bool {
		dd, bb := int(d%200)+1, int(bins%10)+1
		parts := BinPartition(dd, bb, rand.New(rand.NewSource(seed)))
		total := 0
		for _, p := range parts {
			total += len(p)
		}
		return total == dd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureEncoderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := FeatureEncoder{Epsilon: 2, A: 0, B: 1, Workload: 4, Dim: 20}
	x := make([]float64, 20)
	for i := range x {
		x[i] = rng.Float64()
	}
	parts, err := f.Encode(x, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	transmitted := 0
	for _, p := range parts {
		if len(p) != 20 {
			t.Fatalf("part length %d", len(p))
		}
		for _, v := range p {
			switch v {
			case 0, 1:
				transmitted++
			case NotTransmitted:
			default:
				t.Fatalf("encoded value %v", v)
			}
		}
	}
	if transmitted != 20 {
		t.Fatalf("transmitted %d elements, want every element exactly once", transmitted)
	}
	rec, err := f.Recover(parts[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 20 {
		t.Fatal("recover length wrong")
	}
}

func TestFeatureEncoderValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bad := FeatureEncoder{Epsilon: 2, A: 0, B: 1, Workload: 0, Dim: 4}
	if _, err := bad.Encode(make([]float64, 4), rng); err == nil {
		t.Fatal("workload 0 must error")
	}
	f := FeatureEncoder{Epsilon: 2, A: 0, B: 1, Workload: 2, Dim: 4}
	if _, err := f.Encode(make([]float64, 3), rng); err == nil {
		t.Fatal("wrong feature length must error")
	}
	if _, err := f.Recover(make([]float64, 3)); err == nil {
		t.Fatal("wrong encoded length must error")
	}
}

func TestFeatureEncoderBudget(t *testing.T) {
	f := FeatureEncoder{Epsilon: 2, A: 0, B: 1, Workload: 8, Dim: 128}
	want := 2.0 * 8 / 128
	if math.Abs(f.PerElementEps()-want) > 1e-12 {
		t.Fatalf("per-element eps = %v, want %v", f.PerElementEps(), want)
	}
}

func TestGaussianSigma(t *testing.T) {
	s, err := GaussianSigma(2, 1e-5, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2*math.Log(1.25/1e-5)) / 2
	if math.Abs(s-want) > 1e-12 {
		t.Fatalf("sigma = %v, want %v", s, want)
	}
	for _, args := range [][3]float64{{0, 1e-5, 1}, {1, 0, 1}, {1, 2, 1}, {1, 1e-5, 0}} {
		if _, err := GaussianSigma(args[0], args[1], args[2]); err == nil {
			t.Fatalf("args %v must error", args)
		}
	}
}

func TestGaussianPerturbStats(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := Gaussian{Sigma: 2}
	x := make([]float64, 100000)
	g.Perturb(x, rng)
	mean, varsum := 0.0, 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for _, v := range x {
		varsum += (v - mean) * (v - mean)
	}
	std := math.Sqrt(varsum / float64(len(x)))
	if math.Abs(mean) > 0.05 || math.Abs(std-2) > 0.05 {
		t.Fatalf("gaussian stats mean=%v std=%v", mean, std)
	}
}

func TestRandomizedResponseKeepRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rr := RandomizedResponse{Eps: 1, K: 4}
	kept := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if rr.Perturb(2, rng) == 2 {
			kept++
		}
	}
	got := float64(kept) / trials
	if math.Abs(got-rr.KeepProb()) > 0.01 {
		t.Fatalf("keep rate %v, want %v", got, rr.KeepProb())
	}
}

func TestRandomizedResponseOutputsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rr := RandomizedResponse{Eps: 0.1, K: 5}
	for i := 0; i < 1000; i++ {
		v := rr.Perturb(i%5, rng)
		if v < 0 || v >= 5 {
			t.Fatalf("output %d outside range", v)
		}
	}
	b := rr
	b.K = 2
	_ = b.PerturbBit(true, rng)
	_ = b.PerturbBit(false, rng)
}

func TestRandomizedResponsePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomizedResponse{Eps: 1, K: 1}.Perturb(0, rng)
}

func TestMultiBitEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := MultiBit{Eps: 2, M: 3, A: 0, B: 1}
	x := []float64{1, 0, 1, 0, 1, 0, 1, 0}
	out, err := m.Encode(x, rng)
	if err != nil {
		t.Fatal(err)
	}
	nonMid := 0
	for _, v := range out {
		if v != 0.5 {
			nonMid++
		}
	}
	if nonMid != 3 {
		t.Fatalf("%d dims transmitted, want 3", nonMid)
	}
	if _, err := m.Encode(nil, rng); err == nil {
		t.Fatal("empty feature must error")
	}
}

func TestMultiBitUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := MultiBit{Eps: 4, M: 1, A: 0, B: 1}
	x := []float64{0.8, 0.1}
	const trials = 200000
	sums := make([]float64, 2)
	for i := 0; i < trials; i++ {
		out, err := m.Encode(x, rng)
		if err != nil {
			t.Fatal(err)
		}
		sums[0] += out[0]
		sums[1] += out[1]
	}
	// Each dim is sampled half the time (mid 0.5 otherwise), so
	// E[out_i] = 0.5·x_i + 0.5·0.5.
	for i, x0 := range x {
		want := 0.5*x0 + 0.25
		got := sums[i] / trials
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("dim %d mean %v, want %v", i, got, want)
		}
	}
}

func TestComposedEps(t *testing.T) {
	if ComposedEps(0.5, 1, 0.25) != 1.75 {
		t.Fatal("composition sum wrong")
	}
}
