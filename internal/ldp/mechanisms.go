package ldp

import (
	"fmt"
	"math"
	"math/rand"
)

// Mechanisms used by the baseline systems.

// Gaussian is the Gaussian mechanism: x + N(0, σ²) per element, where σ is
// calibrated from (ε, δ) and the L2 sensitivity. Used by Naive FedGNN to
// noise features.
type Gaussian struct {
	Sigma float64
}

// GaussianSigma returns the standard deviation of the classical Gaussian
// mechanism for (ε, δ)-DP with the given L2 sensitivity:
// σ = sensitivity·√(2 ln(1.25/δ))/ε.
func GaussianSigma(eps, delta, sensitivity float64) (float64, error) {
	if eps <= 0 || delta <= 0 || delta >= 1 || sensitivity <= 0 {
		return 0, fmt.Errorf("ldp: bad Gaussian parameters eps=%v delta=%v sens=%v", eps, delta, sensitivity)
	}
	return sensitivity * math.Sqrt(2*math.Log(1.25/delta)) / eps, nil
}

// Perturb adds independent Gaussian noise to each element of x in place
// and returns x.
func (g Gaussian) Perturb(x []float64, rng *rand.Rand) []float64 {
	for i := range x {
		x[i] += g.Sigma * rng.NormFloat64()
	}
	return x
}

// RandomizedResponse is Warner's randomized response over k categories:
// the true value is kept with probability e^ε/(e^ε+k−1), otherwise one of
// the k−1 other values is reported uniformly. Used by Naive FedGNN to noise
// labels (k = classes) and adjacency bits (k = 2).
type RandomizedResponse struct {
	Eps float64
	K   int
}

// KeepProb returns the probability of reporting the true category.
func (r RandomizedResponse) KeepProb() float64 {
	e := math.Exp(r.Eps)
	return e / (e + float64(r.K) - 1)
}

// Perturb reports a randomized category for the true value v ∈ [0, K).
func (r RandomizedResponse) Perturb(v int, rng *rand.Rand) int {
	if r.K < 2 {
		panic(fmt.Sprintf("ldp: randomized response needs K ≥ 2, got %d", r.K))
	}
	if v < 0 || v >= r.K {
		panic(fmt.Sprintf("ldp: category %d outside [0,%d)", v, r.K))
	}
	if rng.Float64() < r.KeepProb() {
		return v
	}
	// Uniform over the other K−1 categories.
	o := rng.Intn(r.K - 1)
	if o >= v {
		o++
	}
	return o
}

// PerturbBit randomizes a boolean (K must be 2).
func (r RandomizedResponse) PerturbBit(b bool, rng *rand.Rand) bool {
	v := 0
	if b {
		v = 1
	}
	return r.Perturb(v, rng) == 1
}

// MultiBit is an LPGNN-style multi-bit feature encoder: each user uniformly
// samples M of the D dimensions, randomizes each with budget ε/M using the
// one-bit mechanism, and the server rescales to an unbiased estimate;
// unsampled dimensions contribute the midpoint.
type MultiBit struct {
	Eps  float64
	M    int // sampled dimensions per user
	A, B float64
}

// Encode randomizes x and immediately applies the unbiased recovery map,
// returning the server-side estimate (LPGNN transmits bits; we return the
// decoded estimate since encoder and decoder are both simulated here).
func (m MultiBit) Encode(x []float64, rng *rand.Rand) ([]float64, error) {
	d := len(x)
	if d == 0 {
		return nil, fmt.Errorf("ldp: multi-bit encode of empty feature")
	}
	mm := m.M
	if mm <= 0 || mm > d {
		mm = d
	}
	ob := OneBit{Eps: m.Eps / float64(mm), A: m.A, B: m.B}
	if err := ob.Validate(); err != nil {
		return nil, err
	}
	out := make([]float64, d)
	mid := (m.A + m.B) / 2
	for i := range out {
		out[i] = mid
	}
	for _, i := range rng.Perm(d)[:mm] {
		bit := ob.EncodeValue(x[i], rng)
		out[i] = ob.RecoverValue(bit)
	}
	return out, nil
}

// ComposedEps returns the total budget of a sequence of mechanisms with
// budgets eps, by basic (sequential) composition: Σᵢ εᵢ.
func ComposedEps(eps ...float64) float64 {
	s := 0.0
	for _, e := range eps {
		s += e
	}
	return s
}
