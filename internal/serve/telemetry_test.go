package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lumos/internal/obs"
)

// TestMetricsEndpointScrape is the /metrics acceptance test: a replica built
// with a registry serves parseable Prometheus text carrying the promised
// serving metrics — per-endpoint query latency, batch sizes, swap count, and
// the serving snapshot version.
func TestMetricsEndpointScrape(t *testing.T) {
	s := New(Options{BatchWait: 100 * time.Microsecond, Metrics: obs.New()})
	defer s.Close()
	s.Swap(fakeBundle(3, 16, 4))
	s.Swap(fakeBundle(4, 16, 4))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := http.Post(ts.URL+"/v1/classify", "application/json",
		strings.NewReader(`{"nodes":[0,5]}`)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics -> %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := obs.ParsePrometheus(string(body))
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	checks := map[string]float64{
		`lumos_serve_queries_total{endpoint="classify"}`: 1,
		"lumos_serve_swaps_total":                        2,
		"lumos_serve_snapshot_version":                   4,
		"lumos_serve_query_errors_total":                 0,
	}
	for name, want := range checks {
		got, ok := vals[name]
		if !ok {
			t.Fatalf("metric %s missing from scrape", name)
		}
		if got != want {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}
	// The latency and batch-size histograms exist with one observation each.
	if got := vals[`lumos_serve_query_seconds_count{endpoint="classify"}`]; got != 1 {
		t.Fatalf("classify latency count = %v, want 1", got)
	}
	if got := vals["lumos_serve_batch_size_count"]; got < 1 {
		t.Fatalf("batch size count = %v, want >= 1", got)
	}
}

// TestMetricsEndpointAbsentWithoutRegistry: no registry, no /metrics route —
// embedders that never opted in keep today's surface.
func TestMetricsEndpointAbsentWithoutRegistry(t *testing.T) {
	s := New(Options{BatchWait: 100 * time.Microsecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics without a registry -> %s, want 404", resp.Status)
	}
}

// TestAccessLog checks the structured request log: one record per request
// with method, path, status, latency, and the serving version at answer
// time.
func TestAccessLog(t *testing.T) {
	var mu sync.Mutex
	var recs []AccessRecord
	s := New(Options{
		BatchWait: 100 * time.Microsecond,
		AccessLog: func(r AccessRecord) {
			mu.Lock()
			recs = append(recs, r)
			mu.Unlock()
		},
	})
	defer s.Close()
	s.Swap(fakeBundle(2, 16, 4))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := http.Post(ts.URL+"/v1/classify", "application/json",
		strings.NewReader(`{"nodes":[1]}`)); err != nil {
		t.Fatal(err)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	mu.Lock()
	defer mu.Unlock()
	if len(recs) != 2 {
		t.Fatalf("logged %d records, want 2", len(recs))
	}
	classify, health := recs[0], recs[1]
	if classify.Method != "POST" || classify.Path != "/v1/classify" ||
		classify.Status != http.StatusOK || classify.Version != 2 {
		t.Fatalf("classify record: %+v", classify)
	}
	if classify.Latency <= 0 || classify.LatencyMS <= 0 {
		t.Fatalf("classify record has no latency: %+v", classify)
	}
	if health.Method != "GET" || health.Path != "/healthz" || health.Status != http.StatusOK {
		t.Fatalf("healthz record: %+v", health)
	}
}

// TestRunLoadSwapSplit checks the pre/post-swap latency split: when a swap
// lands mid-run, the report partitions samples by the version that answered
// and the two phases together account for every successful query.
func TestRunLoadSwapSplit(t *testing.T) {
	s := New(Options{BatchWait: 100 * time.Microsecond})
	defer s.Close()
	s.Swap(fakeBundle(1, 32, 4))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan *LoadReport, 1)
	go func() {
		rep, err := RunLoad(LoadConfig{
			BaseURL: ts.URL, Queries: 400, Concurrency: 4, Nodes: 32,
			ClassifyFrac: 0.5, Seed: 2,
		})
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- rep
	}()
	time.Sleep(5 * time.Millisecond)
	s.Swap(fakeBundle(2, 32, 4))
	rep := <-done
	if rep == nil {
		return
	}
	if rep.P90ms < rep.P50ms || rep.MaxMs < rep.P99ms {
		t.Fatalf("percentile ordering broken: %+v", rep)
	}
	if rep.PreSwap == nil {
		t.Fatalf("no pre-swap phase: %+v", rep)
	}
	total := rep.PreSwap.Queries
	if rep.PostSwap != nil {
		total += rep.PostSwap.Queries
	}
	if total != rep.Queries-rep.Errors {
		t.Fatalf("phases cover %d queries, want %d", total, rep.Queries-rep.Errors)
	}
	if rep.MaxVersion > rep.MinVersion && rep.PostSwap == nil {
		t.Fatalf("swap observed (v%d..v%d) but no post-swap phase", rep.MinVersion, rep.MaxVersion)
	}
}

// TestRunLoadNoSwapHasNoPostPhase: a single-version run reports its whole
// sample set as pre-swap and leaves PostSwap nil.
func TestRunLoadNoSwapHasNoPostPhase(t *testing.T) {
	s := New(Options{BatchWait: 100 * time.Microsecond})
	defer s.Close()
	s.Swap(fakeBundle(1, 32, 4))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	rep, err := RunLoad(LoadConfig{
		BaseURL: ts.URL, Queries: 100, Concurrency: 2, Nodes: 32,
		ClassifyFrac: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PostSwap != nil {
		t.Fatalf("no swap happened but PostSwap = %+v", rep.PostSwap)
	}
	if rep.PreSwap == nil || rep.PreSwap.Queries != rep.Queries-rep.Errors {
		t.Fatalf("pre-swap phase: %+v of %+v", rep.PreSwap, rep)
	}
}
