package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"lumos/internal/core"
	"lumos/internal/graph"
	"lumos/internal/metrics"
	"lumos/internal/snapshot"
	"lumos/internal/tensor"
)

// trainedSystem briefly trains a small system through the public core API.
func trainedSystem(t *testing.T, task core.Task, seed int64) (*core.System, *graph.NodeSplit, *graph.EdgeSplit) {
	t.Helper()
	g, err := graph.Generate(graph.GenConfig{
		Name: "servetest", N: 40, M: 140, Classes: 3, FeatureDim: 12,
		Homophily: 0.85, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Task: task, Epochs: 2, MCMCIterations: 10, Shards: 5, Workers: 2, Seed: seed,
	}
	rng := rand.New(rand.NewSource(seed))
	if task == core.Supervised {
		split, err := graph.SplitNodes(g, 0.5, 0.25, rng)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.NewSystem(g, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.TrainSupervised(split); err != nil {
			t.Fatal(err)
		}
		return sys, split, nil
	}
	es, err := graph.SplitEdges(g, 0.8, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(es.TrainGraph, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.TrainUnsupervised(es); err != nil {
		t.Fatal(err)
	}
	return sys, nil, es
}

// bundleOf round-trips a system through capture → encode → decode → bundle,
// the exact path a serving replica takes.
func bundleOf(t *testing.T, sys *core.System, version uint64) *Bundle {
	t.Helper()
	snap, err := snapshot.Capture(sys, snapshot.Meta{Version: version})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := snapshot.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBundle(decoded)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServeBundleBitIdentical: a bundle built from an encoded+decoded
// snapshot must answer exactly what the live training system's own
// evaluation computes — same predictions, same accuracy, same AUC.
func TestServeBundleBitIdentical(t *testing.T) {
	t.Run("classification", func(t *testing.T) {
		sys, split, _ := trainedSystem(t, core.Supervised, 81)
		b := bundleOf(t, sys, 1)
		all := make([]int, b.N)
		for i := range all {
			all[i] = i
		}
		served, err := b.Classify(all)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sys.Predictions()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(served, want) {
			t.Fatal("served classes differ from training-system predictions")
		}
		acc, err := sys.EvaluateAccuracy(split.IsTest)
		if err != nil {
			t.Fatal(err)
		}
		correct, total := 0, 0
		for v, mask := range split.IsTest {
			if !mask {
				continue
			}
			total++
			if served[v] == sys.G.Labels[v] {
				correct++
			}
		}
		if got := float64(correct) / float64(total); got != acc {
			t.Fatalf("served accuracy %v != EvaluateAccuracy %v", got, acc)
		}
	})

	t.Run("link-scoring", func(t *testing.T) {
		sys, _, es := trainedSystem(t, core.Unsupervised, 83)
		b := bundleOf(t, sys, 1)
		pairs := append(append([][2]int(nil), es.Test...), es.TestNeg...)
		served, err := b.Score(pairs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sys.PairScores(pairs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(served, want) {
			t.Fatal("served scores differ from training-system pair scores")
		}
		labels := make([]bool, len(pairs))
		for i := range es.Test {
			labels[i] = true
		}
		servedAUC, err := metrics.ROCAUC(served, labels)
		if err != nil {
			t.Fatal(err)
		}
		auc, err := sys.EvaluateAUC(es.Test, es.TestNeg)
		if err != nil {
			t.Fatal(err)
		}
		if servedAUC != auc {
			t.Fatalf("served AUC %v != EvaluateAUC %v", servedAUC, auc)
		}
		if _, err := b.Classify([]int{0}); err == nil {
			t.Fatal("headless bundle answered a classify query")
		}
	})
}

// fakeBundle fabricates a bundle whose every answer encodes its version:
// all classes are int(v) and every pair score is v²·cols, so a reader that
// mixes fields from two bundles (a torn read) is caught immediately.
func fakeBundle(v uint64, n, cols int) *Bundle {
	emb := tensor.New(n, cols)
	emb.Fill(float64(v))
	preds := make([]int, n)
	for i := range preds {
		preds[i] = int(v)
	}
	return &Bundle{Version: v, N: n, Classes: int(v) + 1, emb: emb, preds: preds}
}

func fakeScore(v uint64, cols int) float64 {
	return float64(v) * float64(v) * float64(cols)
}

// TestServeHotSwapRace hammers the server with concurrent classify and
// score queries while a publisher hot-swaps through 30 versions (and
// replays stale ones). Every answer must be internally consistent with the
// version it reports, and each client's observed version must never move
// backwards. Run under -race this also proves the swap is torn-read free.
func TestServeHotSwapRace(t *testing.T) {
	const (
		nodes    = 16
		cols     = 4
		versions = 30
		clients  = 8
		queries  = 250
	)
	s := New(Options{BatchWait: 100 * time.Microsecond})
	defer s.Close()
	if !s.Swap(fakeBundle(1, nodes, cols)) {
		t.Fatal("initial swap rejected")
	}
	if s.Swap(fakeBundle(1, nodes, cols)) {
		t.Fatal("replayed version accepted")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(2); v <= versions; v++ {
			if !s.Swap(fakeBundle(v, nodes, cols)) {
				t.Errorf("swap to v%d rejected", v)
			}
			if s.Swap(fakeBundle(v-1, nodes, cols)) {
				t.Errorf("stale swap to v%d accepted", v-1)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			var last uint64
			for i := 0; i < queries; i++ {
				if i%2 == 0 {
					version, classes, err := s.Classify([]int{rng.Intn(nodes)})
					if err != nil {
						t.Errorf("classify: %v", err)
						return
					}
					if classes[0] != int(version) {
						t.Errorf("torn read: class %d from v%d", classes[0], version)
						return
					}
					if version < last {
						t.Errorf("version moved backwards: %d after %d", version, last)
						return
					}
					last = version
				} else {
					version, scores, err := s.Score([][2]int{{rng.Intn(nodes), rng.Intn(nodes)}})
					if err != nil {
						t.Errorf("score: %v", err)
						return
					}
					if scores[0] != fakeScore(version, cols) {
						t.Errorf("torn read: score %v from v%d", scores[0], version)
						return
					}
					if version < last {
						t.Errorf("version moved backwards: %d after %d", version, last)
						return
					}
					last = version
				}
			}
		}(c)
	}
	wg.Wait()
	if got := s.Current().Version; got != versions {
		t.Fatalf("final version %d, want %d", got, versions)
	}
}

func TestServeHTTPEndpoints(t *testing.T) {
	s := New(Options{BatchWait: 100 * time.Microsecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp, body
	}
	post := func(path, body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	// Before any snapshot loads, the replica reports unready.
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz before load: %s", resp.Status)
	}
	if resp, _ := post("/v1/classify", `{"nodes":[0]}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("classify before load: %s", resp.Status)
	}

	b := fakeBundle(3, 8, 2)
	b.Meta = snapshot.Meta{Version: 3, Task: "supervised", Backbone: "GCN", Dataset: "fake"}
	s.Swap(b)

	if resp, body := get("/healthz"); resp.StatusCode != http.StatusOK || body["version"].(float64) != 3 {
		t.Fatalf("healthz: %s %v", resp.Status, body)
	}
	if _, body := get("/v1/info"); body["dataset"] != "fake" || body["nodes"].(float64) != 8 {
		t.Fatalf("info: %v", body)
	}
	if resp, body := post("/v1/classify", `{"nodes":[1,5]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("classify: %s %v", resp.Status, body)
	} else if cs := body["classes"].([]any); len(cs) != 2 || cs[0].(float64) != 3 {
		t.Fatalf("classify answer: %v", body)
	}
	if resp, body := post("/v1/score", `{"pairs":[[0,1]]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("score: %s %v", resp.Status, body)
	} else if ss := body["scores"].([]any); ss[0].(float64) != fakeScore(3, 2) {
		t.Fatalf("score answer: %v", body)
	}

	// Client mistakes are 400s with a reason, not 500s.
	if resp, _ := post("/v1/classify", `{"nodes":[99]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range node: %s", resp.Status)
	}
	if resp, _ := post("/v1/classify", `{"nodes":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty query: %s", resp.Status)
	}
	if resp, _ := post("/v1/score", `{"pears":[[0,1]]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %s", resp.Status)
	}
	if resp, _ := post("/v1/score", `not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %s", resp.Status)
	}
}

// TestServeWatchHotSwap publishes snapshots to a watched file and expects
// the server to pick each one up; a garbage overwrite must be tolerated
// without dropping the bundle already being served.
func TestServeWatchHotSwap(t *testing.T) {
	sys, _, _ := trainedSystem(t, core.Supervised, 89)
	snap, err := snapshot.Capture(sys, snapshot.Meta{Dataset: "servetest"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.snap")
	if v, err := snapshot.PublishNext(path, snap); err != nil || v != 1 {
		t.Fatalf("publish v1: %d, %v", v, err)
	}

	s := New(Options{BatchWait: 100 * time.Microsecond, Logf: t.Logf})
	defer s.Close()
	stop := s.Watch(path, 2*time.Millisecond)
	defer stop()

	waitVersion := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if b := s.Current(); b != nil && b.Version == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("server never picked up snapshot v%d", want)
	}
	waitVersion(1)

	if v, err := snapshot.PublishNext(path, snap); err != nil || v != 2 {
		t.Fatalf("publish v2: %d, %v", v, err)
	}
	waitVersion(2)

	// A corrupt publish must not take down the replica.
	if err := os.WriteFile(path, []byte("garbage, not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if b := s.Current(); b == nil || b.Version != 2 {
		t.Fatalf("corrupt publish disturbed the served bundle: %+v", b)
	}
}

func TestServeRunLoad(t *testing.T) {
	s := New(Options{BatchWait: 100 * time.Microsecond})
	defer s.Close()
	s.Swap(fakeBundle(1, 32, 4))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := RunLoad(LoadConfig{
		BaseURL: ts.URL, Queries: 200, Concurrency: 4, Nodes: 32,
		ClassifyFrac: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Regressions != 0 {
		t.Fatalf("load run: %+v", rep)
	}
	if rep.MinVersion != 1 || rep.MaxVersion != 1 {
		t.Fatalf("versions: %+v", rep)
	}
	if rep.QPS <= 0 || rep.P99ms < rep.P50ms {
		t.Fatalf("latency stats: %+v", rep)
	}
	if _, err := RunLoad(LoadConfig{}); err == nil {
		t.Fatal("empty load config accepted")
	}
}
