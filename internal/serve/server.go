package serve

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"lumos/internal/obs"
	"lumos/internal/snapshot"
)

// Options tunes a Server. The zero value is usable.
type Options struct {
	// MaxBatch caps how many queued queries one worker pass answers against
	// a single bundle load (default 64).
	MaxBatch int
	// BatchWait is how long a non-full batch waits for stragglers before
	// being answered (default 2ms).
	BatchWait time.Duration
	// Logf, when set, receives watcher and swap diagnostics.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, registers the replica's instruments (query
	// latency and batch-size histograms, queue depth, swap counter,
	// serving snapshot version/age) and enables GET /metrics on Handler.
	Metrics *obs.Registry
	// Tracer, when non-nil, records batch drains and hot swaps as
	// wall-clock trace events.
	Tracer *obs.Tracer
	// AccessLog, when set, receives one record per HTTP request handled
	// by Handler. Nil (the default) logs nothing.
	AccessLog func(AccessRecord)
}

// AccessRecord describes one handled HTTP request for access logging.
type AccessRecord struct {
	Method  string        `json:"method"`
	Path    string        `json:"path"`
	Status  int           `json:"status"`
	Latency time.Duration `json:"-"`
	// LatencyMS mirrors Latency for structured (JSON) log lines.
	LatencyMS float64 `json:"latency_ms"`
	// Version is the snapshot version being served when the request
	// finished (0 = none loaded).
	Version uint64 `json:"version"`
}

// Server answers queries against the currently-published bundle. Queries
// are batched: a worker drains the queue up to MaxBatch, loads the bundle
// pointer once, and answers the whole batch from it — so every query in a
// batch sees the same model version even while a hot swap lands.
type Server struct {
	opt  Options
	cur  atomic.Pointer[Bundle]
	reqs chan *request
	quit chan struct{}
	wg   sync.WaitGroup
	tel  serveTelemetry
}

type reqKind int

const (
	kindClassify reqKind = iota
	kindScore
)

type request struct {
	kind  reqKind
	nodes []int
	pairs [][2]int
	done  chan result
}

type result struct {
	version uint64
	classes []int
	scores  []float64
	err     error
}

// New builds a Server and starts its batching worker. Close releases it.
func New(opt Options) *Server {
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = 64
	}
	if opt.BatchWait <= 0 {
		opt.BatchWait = 2 * time.Millisecond
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	s := &Server{
		opt:  opt,
		reqs: make(chan *request, 4*opt.MaxBatch),
		quit: make(chan struct{}),
	}
	s.initTelemetry()
	s.wg.Add(1)
	go s.worker()
	return s
}

// Close stops the batching worker. In-flight queries are answered with an
// error; Swap and Current remain safe to call.
func (s *Server) Close() {
	close(s.quit)
	s.wg.Wait()
}

// Current returns the bundle queries are being answered from (nil before
// the first swap).
func (s *Server) Current() *Bundle { return s.cur.Load() }

// Swap atomically replaces the current bundle if b is strictly newer. It
// reports whether the swap happened; stale or replayed versions are
// rejected, so the served version can only move forward no matter how many
// publishers or watchers race.
func (s *Server) Swap(b *Bundle) bool {
	for {
		cur := s.cur.Load()
		if cur != nil && b.Version <= cur.Version {
			return false
		}
		if s.cur.CompareAndSwap(cur, b) {
			s.opt.Logf("serve: now serving snapshot v%d (%d vertices, %d classes)", b.Version, b.N, b.Classes)
			s.tel.swapped(b.Version)
			return true
		}
	}
}

// Classify answers a node-classification query through the batching path.
func (s *Server) Classify(nodes []int) (uint64, []int, error) {
	t0 := s.tel.begin()
	res := s.submit(&request{kind: kindClassify, nodes: nodes, done: make(chan result, 1)})
	s.tel.query(kindClassify, t0, res.err)
	return res.version, res.classes, res.err
}

// Score answers a link-scoring query through the batching path.
func (s *Server) Score(pairs [][2]int) (uint64, []float64, error) {
	t0 := s.tel.begin()
	res := s.submit(&request{kind: kindScore, pairs: pairs, done: make(chan result, 1)})
	s.tel.query(kindScore, t0, res.err)
	return res.version, res.scores, res.err
}

func (s *Server) submit(r *request) result {
	select {
	case s.reqs <- r:
	case <-s.quit:
		return result{err: fmt.Errorf("serve: server closed")}
	}
	select {
	case res := <-r.done:
		return res
	case <-s.quit:
		return result{err: fmt.Errorf("serve: server closed")}
	}
}

// worker drains queries in batches; one bundle load answers a whole batch.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case first := <-s.reqs:
			batch := append(make([]*request, 0, s.opt.MaxBatch), first)
			timer := time.NewTimer(s.opt.BatchWait)
		collect:
			for len(batch) < s.opt.MaxBatch {
				select {
				case r := <-s.reqs:
					batch = append(batch, r)
				case <-timer.C:
					break collect
				case <-s.quit:
					break collect
				}
			}
			timer.Stop()
			t0 := s.tel.begin()
			b := s.cur.Load()
			for _, r := range batch {
				r.done <- answer(b, r)
			}
			var version uint64
			if b != nil {
				version = b.Version
			}
			s.tel.batch(len(batch), version, t0)
		}
	}
}

func answer(b *Bundle, r *request) result {
	if b == nil {
		return result{err: fmt.Errorf("serve: no snapshot loaded yet")}
	}
	switch r.kind {
	case kindClassify:
		classes, err := b.Classify(r.nodes)
		return result{version: b.Version, classes: classes, err: err}
	default:
		scores, err := b.Score(r.pairs)
		return result{version: b.Version, scores: scores, err: err}
	}
}

// Watch polls the snapshot file at path and hot-swaps when a newer version
// is published there. The stat (mtime+size) gates a cheap header peek,
// which gates the full read — a republish is picked up within about one
// interval, while an unchanged file costs one stat per tick. Transient
// errors (mid-rename windows, a corrupt publish) are logged and retried;
// the previous bundle keeps serving. The returned stop function halts the
// watcher and waits for it to exit.
func (s *Server) Watch(path string, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var lastMod time.Time
		var lastSize int64
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			st, err := os.Stat(path)
			if err == nil && (!st.ModTime().Equal(lastMod) || st.Size() != lastSize) {
				lastMod, lastSize = st.ModTime(), st.Size()
				s.maybeLoad(path)
			} else if err != nil && !os.IsNotExist(err) {
				s.opt.Logf("serve: watching %s: %v", path, err)
			}
			select {
			case <-quit:
				return
			case <-ticker.C:
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

func (s *Server) maybeLoad(path string) {
	v, err := snapshot.PeekVersion(path)
	if err != nil {
		s.opt.Logf("serve: peeking %s: %v", path, err)
		return
	}
	if cur := s.cur.Load(); cur != nil && v <= cur.Version {
		return
	}
	snap, err := snapshot.Read(path)
	if err != nil {
		s.opt.Logf("serve: reading %s: %v", path, err)
		return
	}
	b, err := NewBundle(snap)
	if err != nil {
		s.opt.Logf("serve: preparing %s: %v", path, err)
		return
	}
	s.Swap(b)
}
