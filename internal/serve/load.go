package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadConfig drives RunLoad, the replayed query workload lumos-bench uses
// to measure a serving replica.
type LoadConfig struct {
	// BaseURL is the replica to hit, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Queries is the total query count across all workers.
	Queries int
	// Concurrency is the worker count (default 4).
	Concurrency int
	// Nodes is the served graph's vertex count; queried IDs are drawn from
	// a zipf distribution over it — a few hot vertices dominate, the long
	// tail trickles, like real user traffic.
	Nodes int
	// ZipfS is the zipf skew (>1; default 1.3).
	ZipfS float64
	// ClassifyFrac is the fraction of classify queries (the rest score
	// vertex pairs). Use 0 for a headless model.
	ClassifyFrac float64
	// Seed makes the replay deterministic.
	Seed int64
}

// LoadPhase is the latency profile of a slice of a load run.
type LoadPhase struct {
	Queries int     `json:"queries"`
	P50ms   float64 `json:"p50_ms"`
	P90ms   float64 `json:"p90_ms"`
	P99ms   float64 `json:"p99_ms"`
	MaxMs   float64 `json:"max_ms"`
}

// LoadReport summarizes one load run.
type LoadReport struct {
	Queries     int     `json:"queries"`
	Errors      int     `json:"errors"`
	Elapsed     float64 `json:"elapsed_sec"`
	QPS         float64 `json:"qps"`
	P50ms       float64 `json:"p50_ms"`
	P90ms       float64 `json:"p90_ms"`
	P99ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
	MinVersion  uint64  `json:"min_version"`
	MaxVersion  uint64  `json:"max_version"`
	Regressions int     `json:"version_regressions"`
	// PreSwap and PostSwap split the successful queries by the snapshot
	// version that answered them: PreSwap is the oldest version observed
	// during the run, PostSwap is everything newer — so when a hot swap
	// lands mid-run, its latency impact is visible side by side. PostSwap
	// is nil when every answer came from one version (no swap observed).
	PreSwap  *LoadPhase `json:"pre_swap,omitempty"`
	PostSwap *LoadPhase `json:"post_swap,omitempty"`
}

// RunLoad replays cfg.Queries zipf-distributed queries against a replica
// and reports latency percentiles, throughput, and the snapshot versions
// observed. Regressions counts answers whose version moved backwards
// within one worker's ordered stream — always 0 against a correct server,
// even while snapshots hot-swap mid-run.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Queries <= 0 || cfg.Nodes <= 0 || cfg.BaseURL == "" {
		return nil, fmt.Errorf("serve: load config needs BaseURL, Queries, and Nodes")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.3
	}

	type sample struct {
		lat     time.Duration
		version uint64 // 0 on error
	}
	type workerStats struct {
		samples     []sample
		errors      int
		minV, maxV  uint64
		regressions int
	}
	stats := make([]workerStats, cfg.Concurrency)
	per := cfg.Queries / cfg.Concurrency
	extra := cfg.Queries % cfg.Concurrency
	client := &http.Client{Timeout: 30 * time.Second}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			st := &stats[w]
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Nodes-1))
			st.samples = make([]sample, 0, n)
			var lastV uint64
			for i := 0; i < n; i++ {
				var version uint64
				var err error
				t0 := time.Now()
				if rng.Float64() < cfg.ClassifyFrac {
					version, err = queryClassify(client, cfg.BaseURL, []int{int(zipf.Uint64())})
				} else {
					version, err = queryScore(client, cfg.BaseURL, [][2]int{{int(zipf.Uint64()), int(zipf.Uint64())}})
				}
				lat := time.Since(t0)
				if err != nil {
					st.samples = append(st.samples, sample{lat: lat})
					st.errors++
					continue
				}
				st.samples = append(st.samples, sample{lat: lat, version: version})
				if version < lastV {
					st.regressions++
				}
				lastV = version
				if st.minV == 0 || version < st.minV {
					st.minV = version
				}
				if version > st.maxV {
					st.maxV = version
				}
			}
		}(w, n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{Queries: cfg.Queries, Elapsed: elapsed.Seconds()}
	var all, pre, post []time.Duration
	for i := range stats {
		st := &stats[i]
		rep.Errors += st.errors
		rep.Regressions += st.regressions
		if st.minV > 0 && (rep.MinVersion == 0 || st.minV < rep.MinVersion) {
			rep.MinVersion = st.minV
		}
		if st.maxV > rep.MaxVersion {
			rep.MaxVersion = st.maxV
		}
	}
	for i := range stats {
		for _, sm := range stats[i].samples {
			all = append(all, sm.lat)
			switch {
			case sm.version == 0: // errored; counts toward totals only
			case sm.version == rep.MinVersion:
				pre = append(pre, sm.lat)
			default:
				post = append(post, sm.lat)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.P50ms = percentileMs(all, 0.50)
	rep.P90ms = percentileMs(all, 0.90)
	rep.P99ms = percentileMs(all, 0.99)
	if len(all) > 0 {
		rep.MaxMs = float64(all[len(all)-1]) / float64(time.Millisecond)
	}
	rep.PreSwap = loadPhase(pre)
	// Pre-swap vs post-swap is only meaningful when a swap was observed;
	// with a single serving version the whole run IS the pre-swap phase.
	if rep.MaxVersion > rep.MinVersion {
		rep.PostSwap = loadPhase(post)
	}
	if elapsed > 0 {
		rep.QPS = float64(cfg.Queries) / elapsed.Seconds()
	}
	return rep, nil
}

// loadPhase builds a phase summary from unsorted latencies (nil if empty).
func loadPhase(lats []time.Duration) *LoadPhase {
	if len(lats) == 0 {
		return nil
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return &LoadPhase{
		Queries: len(lats),
		P50ms:   percentileMs(lats, 0.50),
		P90ms:   percentileMs(lats, 0.90),
		P99ms:   percentileMs(lats, 0.99),
		MaxMs:   float64(lats[len(lats)-1]) / float64(time.Millisecond),
	}
}

func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

func queryClassify(c *http.Client, base string, nodes []int) (uint64, error) {
	var resp classifyResponse
	if err := postJSON(c, base+"/v1/classify", classifyRequest{nodes}, &resp); err != nil {
		return 0, err
	}
	return resp.Version, nil
}

func queryScore(c *http.Client, base string, pairs [][2]int) (uint64, error) {
	var resp scoreResponse
	if err := postJSON(c, base+"/v1/score", scoreRequest{pairs}, &resp); err != nil {
		return 0, err
	}
	return resp.Version, nil
}

func postJSON(c *http.Client, url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, r.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(r.Body).Decode(resp)
}
