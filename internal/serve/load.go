package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadConfig drives RunLoad, the replayed query workload lumos-bench uses
// to measure a serving replica.
type LoadConfig struct {
	// BaseURL is the replica to hit, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Queries is the total query count across all workers.
	Queries int
	// Concurrency is the worker count (default 4).
	Concurrency int
	// Nodes is the served graph's vertex count; queried IDs are drawn from
	// a zipf distribution over it — a few hot vertices dominate, the long
	// tail trickles, like real user traffic.
	Nodes int
	// ZipfS is the zipf skew (>1; default 1.3).
	ZipfS float64
	// ClassifyFrac is the fraction of classify queries (the rest score
	// vertex pairs). Use 0 for a headless model.
	ClassifyFrac float64
	// Seed makes the replay deterministic.
	Seed int64
}

// LoadReport summarizes one load run.
type LoadReport struct {
	Queries     int     `json:"queries"`
	Errors      int     `json:"errors"`
	Elapsed     float64 `json:"elapsed_sec"`
	QPS         float64 `json:"qps"`
	P50ms       float64 `json:"p50_ms"`
	P99ms       float64 `json:"p99_ms"`
	MinVersion  uint64  `json:"min_version"`
	MaxVersion  uint64  `json:"max_version"`
	Regressions int     `json:"version_regressions"`
}

// RunLoad replays cfg.Queries zipf-distributed queries against a replica
// and reports latency percentiles, throughput, and the snapshot versions
// observed. Regressions counts answers whose version moved backwards
// within one worker's ordered stream — always 0 against a correct server,
// even while snapshots hot-swap mid-run.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Queries <= 0 || cfg.Nodes <= 0 || cfg.BaseURL == "" {
		return nil, fmt.Errorf("serve: load config needs BaseURL, Queries, and Nodes")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.3
	}

	type workerStats struct {
		latencies   []time.Duration
		errors      int
		minV, maxV  uint64
		regressions int
	}
	stats := make([]workerStats, cfg.Concurrency)
	per := cfg.Queries / cfg.Concurrency
	extra := cfg.Queries % cfg.Concurrency
	client := &http.Client{Timeout: 30 * time.Second}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			st := &stats[w]
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Nodes-1))
			st.latencies = make([]time.Duration, 0, n)
			var lastV uint64
			for i := 0; i < n; i++ {
				var version uint64
				var err error
				t0 := time.Now()
				if rng.Float64() < cfg.ClassifyFrac {
					version, err = queryClassify(client, cfg.BaseURL, []int{int(zipf.Uint64())})
				} else {
					version, err = queryScore(client, cfg.BaseURL, [][2]int{{int(zipf.Uint64()), int(zipf.Uint64())}})
				}
				st.latencies = append(st.latencies, time.Since(t0))
				if err != nil {
					st.errors++
					continue
				}
				if version < lastV {
					st.regressions++
				}
				lastV = version
				if st.minV == 0 || version < st.minV {
					st.minV = version
				}
				if version > st.maxV {
					st.maxV = version
				}
			}
		}(w, n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{Queries: cfg.Queries, Elapsed: elapsed.Seconds()}
	var all []time.Duration
	for i := range stats {
		st := &stats[i]
		all = append(all, st.latencies...)
		rep.Errors += st.errors
		rep.Regressions += st.regressions
		if st.minV > 0 && (rep.MinVersion == 0 || st.minV < rep.MinVersion) {
			rep.MinVersion = st.minV
		}
		if st.maxV > rep.MaxVersion {
			rep.MaxVersion = st.maxV
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.P50ms = percentileMs(all, 0.50)
	rep.P99ms = percentileMs(all, 0.99)
	if elapsed > 0 {
		rep.QPS = float64(cfg.Queries) / elapsed.Seconds()
	}
	return rep, nil
}

func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

func queryClassify(c *http.Client, base string, nodes []int) (uint64, error) {
	var resp classifyResponse
	if err := postJSON(c, base+"/v1/classify", classifyRequest{nodes}, &resp); err != nil {
		return 0, err
	}
	return resp.Version, nil
}

func queryScore(c *http.Client, base string, pairs [][2]int) (uint64, error) {
	var resp scoreResponse
	if err := postJSON(c, base+"/v1/score", scoreRequest{pairs}, &resp); err != nil {
		return 0, err
	}
	return resp.Version, nil
}

func postJSON(c *http.Client, url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, r.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(r.Body).Decode(resp)
}
