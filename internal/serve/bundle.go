// Package serve answers node-classification and link-scoring queries from
// published model snapshots. A Bundle is one immutable snapshot prepared
// for serving (embedding cache plus precomputed predictions); a Server
// batches incoming queries against the current bundle and hot-swaps to a
// newer bundle atomically, so a query always sees one consistent model
// version and versions only ever move forward.
package serve

import (
	"fmt"

	"lumos/internal/snapshot"
	"lumos/internal/tensor"
)

// Bundle is an immutable, fully-materialized serving unit: the snapshot's
// metadata plus the read-mostly caches queries are answered from. Nothing
// in a bundle is mutated after NewBundle returns, which is what makes the
// lock-free hot swap safe — readers either see the old bundle or the new
// one, never a mix.
type Bundle struct {
	Version uint64
	Meta    snapshot.Meta
	N       int // vertex count
	Classes int // 0 = link scoring only

	emb   *tensor.Matrix // pooled per-vertex embeddings (N × OutDim)
	preds []int          // per-vertex argmax class; nil when Classes == 0
}

// NewBundle runs the snapshot's inference system once and caches its
// outputs. The forward pass reuses the training shard partition, so every
// answer the bundle gives is bit-identical to the training process's own
// evaluation of the same model.
func NewBundle(s *snapshot.Snapshot) (*Bundle, error) {
	sys, err := s.System()
	if err != nil {
		return nil, fmt.Errorf("serve: rebuilding system: %w", err)
	}
	b := &Bundle{
		Version: s.Meta.Version,
		Meta:    s.Meta,
		N:       s.State.N,
		Classes: s.Classes,
		emb:     sys.Embeddings(),
	}
	if s.Classes > 0 {
		if b.preds, err = sys.Predictions(); err != nil {
			return nil, fmt.Errorf("serve: precomputing predictions: %w", err)
		}
	}
	return b, nil
}

// Classify returns the predicted class of each queried vertex.
func (b *Bundle) Classify(nodes []int) ([]int, error) {
	if b.preds == nil {
		return nil, fmt.Errorf("serve: model v%d has no classification head", b.Version)
	}
	out := make([]int, len(nodes))
	for i, v := range nodes {
		if v < 0 || v >= b.N {
			return nil, fmt.Errorf("serve: node %d out of range [0,%d)", v, b.N)
		}
		out[i] = b.preds[v]
	}
	return out, nil
}

// Score returns the embedding dot product of each queried vertex pair —
// the link-prediction score EvaluateAUC ranks.
func (b *Bundle) Score(pairs [][2]int) ([]float64, error) {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		if p[0] < 0 || p[0] >= b.N || p[1] < 0 || p[1] >= b.N {
			return nil, fmt.Errorf("serve: pair (%d,%d) out of range [0,%d)", p[0], p[1], b.N)
		}
		out[i] = tensor.RowDot(b.emb, p[0], b.emb, p[1])
	}
	return out, nil
}
