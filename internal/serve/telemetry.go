package serve

import (
	"time"

	"lumos/internal/obs"
)

// serveTelemetry binds the replica's instruments. The zero value (enabled
// == false) is fully disabled: instrument methods are nil-safe, and the
// enabled flag only gates the time.Now reads bracketing each query.
type serveTelemetry struct {
	enabled bool
	tracer  *obs.Tracer

	classifyLat   *obs.Histogram
	scoreLat      *obs.Histogram
	classifyTotal *obs.Counter
	scoreTotal    *obs.Counter
	queryErrors   *obs.Counter
	batchSize     *obs.Histogram
	swaps         *obs.Counter
}

// serveTrack is the tracer track for the batching worker and swap events.
const serveTrack = 0

// initTelemetry registers the server's instruments on opt.Metrics and
// hooks the live gauges (queue depth, serving version, snapshot age) that
// are sampled at scrape time. Safe to call with Metrics and Tracer nil.
func (s *Server) initTelemetry() {
	r, tr := s.opt.Metrics, s.opt.Tracer
	if r == nil && tr == nil {
		return
	}
	tr.SetTrackName(serveTrack, "serve worker")
	s.tel = serveTelemetry{
		enabled: true,
		tracer:  tr,
		classifyLat: r.Histogram(`lumos_serve_query_seconds{endpoint="classify"}`,
			"End-to-end query latency through the batching path", obs.LatencyBuckets),
		scoreLat: r.Histogram(`lumos_serve_query_seconds{endpoint="score"}`,
			"End-to-end query latency through the batching path", obs.LatencyBuckets),
		classifyTotal: r.Counter(`lumos_serve_queries_total{endpoint="classify"}`,
			"Queries answered, by endpoint"),
		scoreTotal: r.Counter(`lumos_serve_queries_total{endpoint="score"}`,
			"Queries answered, by endpoint"),
		queryErrors: r.Counter("lumos_serve_query_errors_total",
			"Queries answered with an error"),
		batchSize: r.Histogram("lumos_serve_batch_size",
			"Queries answered per worker batch", obs.SizeBuckets),
		swaps: r.Counter("lumos_serve_swaps_total",
			"Successful bundle hot swaps"),
	}
	if r == nil {
		return
	}
	r.GaugeFunc("lumos_serve_queue_depth",
		"Queries waiting in the batching queue", func() float64 {
			return float64(len(s.reqs))
		})
	r.GaugeFunc("lumos_serve_snapshot_version",
		"Version of the snapshot being served (0 = none loaded)", func() float64 {
			if b := s.cur.Load(); b != nil {
				return float64(b.Version)
			}
			return 0
		})
	r.GaugeFunc("lumos_serve_snapshot_age_seconds",
		"Seconds since the served snapshot was created (0 = unknown)", func() float64 {
			b := s.cur.Load()
			if b == nil || b.Meta.CreatedUnix == 0 {
				return 0
			}
			return float64(time.Now().Unix() - b.Meta.CreatedUnix)
		})
}

// begin stamps a query's start; the zero time means telemetry is off.
func (t *serveTelemetry) begin() time.Time {
	if !t.enabled {
		return time.Time{}
	}
	return time.Now()
}

// query records one answered query on the endpoint's instruments.
func (t *serveTelemetry) query(kind reqKind, start time.Time, err error) {
	if !t.enabled {
		return
	}
	lat := time.Since(start).Seconds()
	if kind == kindClassify {
		t.classifyTotal.Inc()
		t.classifyLat.Observe(lat)
	} else {
		t.scoreTotal.Inc()
		t.scoreLat.Observe(lat)
	}
	if err != nil {
		t.queryErrors.Inc()
	}
}

// batch records one worker drain: the batch size and, when tracing, a
// span covering the answer phase.
func (t *serveTelemetry) batch(n int, version uint64, start time.Time) {
	if !t.enabled {
		return
	}
	t.batchSize.Observe(float64(n))
	if t.tracer != nil {
		end := t.tracer.Now()
		t.tracer.Span(serveTrack, "serve", "batch", end-time.Since(start).Seconds(), end,
			map[string]any{"size": n, "version": version})
	}
}

// swapped records a successful hot swap.
func (t *serveTelemetry) swapped(version uint64) {
	if !t.enabled {
		return
	}
	t.swaps.Inc()
	t.tracer.Instant(serveTrack, "serve", "hot-swap", t.tracer.Now(),
		map[string]any{"version": version})
}
