package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// The HTTP surface of a serving replica:
//
//	GET  /healthz      → {"status":"ok","version":3}         (503 until a snapshot loads)
//	GET  /v1/info      → model metadata of the served snapshot
//	POST /v1/classify  {"nodes":[4,7]}      → {"version":3,"classes":[1,0]}
//	POST /v1/score     {"pairs":[[0,1]]}    → {"version":3,"scores":[0.83]}
//
// Every answer names the snapshot version it came from, so clients can
// detect hot swaps mid-stream and pin caches to versions.

type classifyRequest struct {
	Nodes []int `json:"nodes"`
}

type classifyResponse struct {
	Version uint64 `json:"version"`
	Classes []int  `json:"classes"`
}

type scoreRequest struct {
	Pairs [][2]int `json:"pairs"`
}

type scoreResponse struct {
	Version uint64    `json:"version"`
	Scores  []float64 `json:"scores"`
}

type infoResponse struct {
	Version    uint64  `json:"version"`
	Task       string  `json:"task"`
	Backbone   string  `json:"backbone"`
	Dataset    string  `json:"dataset,omitempty"`
	Round      int     `json:"round,omitempty"`
	Metric     float64 `json:"metric,omitempty"`
	MetricName string  `json:"metric_name,omitempty"`
	Nodes      int     `json:"nodes"`
	Classes    int     `json:"classes"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds request bodies; queries are small.
const maxBodyBytes = 1 << 20

// Handler returns the HTTP API for this server. When Options.Metrics is
// set, GET /metrics serves the registry in Prometheus text format; when
// Options.AccessLog is set, every request is reported to it after being
// handled.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/info", s.handleInfo)
	mux.HandleFunc("POST /v1/classify", s.handleClassify)
	mux.HandleFunc("POST /v1/score", s.handleScore)
	if s.opt.Metrics != nil {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if s.opt.AccessLog == nil {
		return mux
	}
	return s.accessLogged(mux)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.opt.Metrics.WritePrometheus(w)
}

// statusWriter captures the response status for access logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(status int) {
	sw.status = status
	sw.ResponseWriter.WriteHeader(status)
}

// accessLogged wraps h so every request emits one AccessRecord.
func (s *Server) accessLogged(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r)
		lat := time.Since(start)
		var version uint64
		if b := s.Current(); b != nil {
			version = b.Version
		}
		s.opt.AccessLog(AccessRecord{
			Method:    r.Method,
			Path:      r.URL.Path,
			Status:    sw.status,
			Latency:   lat,
			LatencyMS: float64(lat.Nanoseconds()) / 1e6,
			Version:   version,
		})
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	b := s.Current()
	if b == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"no snapshot loaded yet"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status  string `json:"status"`
		Version uint64 `json:"version"`
	}{"ok", b.Version})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	b := s.Current()
	if b == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"no snapshot loaded yet"})
		return
	}
	writeJSON(w, http.StatusOK, infoResponse{
		Version:    b.Version,
		Task:       b.Meta.Task,
		Backbone:   b.Meta.Backbone,
		Dataset:    b.Meta.Dataset,
		Round:      b.Meta.Round,
		Metric:     b.Meta.Metric,
		MetricName: b.Meta.MetricName,
		Nodes:      b.N,
		Classes:    b.Classes,
	})
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Nodes) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{"empty node list"})
		return
	}
	version, classes, err := s.Classify(req.Nodes)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, classifyResponse{version, classes})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req scoreRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Pairs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{"empty pair list"})
		return
	}
	version, scores, err := s.Score(req.Pairs)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, scoreResponse{version, scores})
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("decoding request: %v", err)})
		return false
	}
	return true
}

// writeQueryError maps query failures: not-ready is a 503 load balancers
// back off from; everything else (out-of-range node, headless model) is
// the client's 400.
func writeQueryError(w http.ResponseWriter, err error) {
	b := errorResponse{err.Error()}
	if cur := err.Error(); cur == "serve: no snapshot loaded yet" || cur == "serve: server closed" {
		writeJSON(w, http.StatusServiceUnavailable, b)
		return
	}
	writeJSON(w, http.StatusBadRequest, b)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
