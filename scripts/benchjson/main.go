// Command benchjson converts `go test -bench` output into a committed JSON
// artifact. It reads the benchmark stream on stdin, echoes it unchanged to
// stdout (so `make bench` still shows the live table), and writes a report
// with one entry per benchmark — ns/op, B/op, allocs/op, and any custom
// metrics (speedup×, workers, GFLOP/s, …) — plus the same run metadata
// BENCH_serve.json carries (go version, GOMAXPROCS, NumCPU), so perf
// trajectories stay interpretable across boxes and toolchains.
//
// Usage:
//
//	go test -bench 'BenchmarkEpoch' -benchmem . | go run ./scripts/benchjson -out BENCH_epoch.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Benchmarks []benchResult `json:"benchmarks"`
	CPU        string        `json:"cpu,omitempty"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Args       []string      `json:"args"`
	GeneratedS int64         `json:"generated_unix"`
}

func main() {
	out := flag.String("out", "BENCH_epoch.json", "where to write the JSON report")
	flag.Parse()

	rep := report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Args:       os.Args[1:],
		GeneratedS: time.Now().Unix(),
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	failed := false
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		// A failing bench run prints FAIL (and --- FAIL: per test); refuse
		// to write a report from it so a broken `make bench` can't commit
		// an empty or stale artifact.
		if trimmed := strings.TrimSpace(line); trimmed == "FAIL" ||
			strings.HasPrefix(trimmed, "FAIL\t") || strings.HasPrefix(trimmed, "FAIL ") ||
			strings.HasPrefix(trimmed, "--- FAIL") {
			failed = true
		}
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPU = strings.TrimSpace(cpu)
			continue
		}
		if r, ok := parseBenchLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("reading stdin: %v", err)
	}
	if failed {
		fatalf("bench stream contains a FAIL line; refusing to write %s", *out)
	}
	if len(rep.Benchmarks) == 0 {
		fatalf("no benchmark lines found on stdin (did the bench run fail?)")
	}

	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		fatalf("encoding %s: %v", *out, err)
	}
	if err := f.Close(); err != nil {
		fatalf("closing %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   10   1234 ns/op   56 B/op   7 allocs/op   1.9 speedup×
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{
		Name:       strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0))),
		Iterations: iters,
	}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
