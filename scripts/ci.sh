#!/usr/bin/env bash
# CI gate: vet, build, full test suite, then the race-detector pass over the
# training engine and everything that feeds it. Short mode keeps the race
# pass (which slows execution ~10x) at a few minutes on a laptop.
#
# The full (non-short) test pass includes the allocation-regression guard
# (internal/core/alloc_test.go): steady-state tape-engine epochs must stay
# under a fixed allocation budget. It is re-run by name below so a renamed
# or accidentally-skipped guard fails CI loudly.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...

alloc_out=$(go test -run 'Test(Supervised|Unsupervised)EpochAllocBudget|TestUnsupervisedSessionAllocBudget|TestDisabledTelemetryAllocBudget' -count=1 -v ./internal/core)
for guard in TestSupervisedEpochAllocBudget TestUnsupervisedEpochAllocBudget TestUnsupervisedSessionAllocBudget TestDisabledTelemetryAllocBudget; do
	if ! grep -q -- "--- PASS: $guard" <<<"$alloc_out"; then
		echo "allocation-regression guard $guard did not pass:" >&2
		echo "$alloc_out" >&2
		exit 1
	fi
done

# Observability gates, re-run by name so a renamed or skipped guard fails
# loudly: the metrics hammer under the race detector (concurrent counters,
# gauges, histograms, and scrapers), the sim trace-determinism golden, and
# the replica /metrics scrape-and-parse suite. The /metrics smoke at CLI
# level rides inside TestServePublishServeQueryE2E below.
obs_out=$(go test -race -run 'TestMetricsHammerConcurrent' -count=1 -v ./internal/obs)
trace_out=$(go test -run 'TestSimTraceDeterministic|TestSimTraceChromeStructure' -count=1 -v ./internal/sim)
scrape_out=$(go test -run 'TestMetricsEndpointScrape|TestAccessLog' -count=1 -v ./internal/serve)
for gate in \
	"TestMetricsHammerConcurrent:$obs_out" \
	"TestSimTraceDeterministic:$trace_out" \
	"TestSimTraceChromeStructure:$trace_out" \
	"TestMetricsEndpointScrape:$scrape_out" \
	"TestAccessLog:$scrape_out"; do
	name=${gate%%:*}
	out=${gate#*:}
	if ! grep -q -- "--- PASS: $name" <<<"$out"; then
		echo "observability gate $name did not pass:" >&2
		echo "$out" >&2
		exit 1
	fi
done

# Fleet-subsystem gates, re-run by name so a renamed or skipped guard fails
# loudly: the trace-driven lumos-sim smoke row (datagen-written trace file →
# fleet.LoadTrace → contended simulation) and the energystudy example (exits
# non-zero unless fleet energy grows monotonically with participation).
smoke_out=$(go test -run 'TestEntryPointsBuildAndRun/(lumos-sim-trace|lumos-sim-telemetry|examples)/energystudy' -count=1 -v .)
for row in lumos-sim-trace lumos-sim-telemetry examples/energystudy; do
	if ! grep -q -- "--- PASS: TestEntryPointsBuildAndRun/$row" <<<"$smoke_out"; then
		echo "fleet smoke row $row did not pass:" >&2
		echo "$smoke_out" >&2
		exit 1
	fi
done

# Kernel gates, re-run by name so a renamed or skipped guard fails loudly:
# the blocked-vs-reference equivalence property tests under the race
# detector (both matmul paths and the fused CSR aggregation, bit-for-bit),
# the end-to-end both-paths trainer comparison, the golden-trace re-check on
# the blocked+fused default, and a lumos-train smoke row forced onto the
# reference path.
kern_out=$(go test -race -run 'TestKernelEquivalence|TestCSRAggregate' -count=1 -v ./internal/tensor ./internal/autodiff)
kpath_out=$(go test -run 'TestKernelPathsBitIdentical' -count=1 -v ./internal/core)
golden_out=$(go test -run 'TestTrainersMatchPreSessionGoldens' -count=1 -v ./internal/core)
ksmoke_out=$(go test -run 'TestEntryPointsBuildAndRun/lumos-train-kernels-reference' -count=1 -v .)
for gate in \
	"TestKernelEquivalenceMatMul:$kern_out" \
	"TestKernelEquivalenceMatMulNT:$kern_out" \
	"TestKernelEquivalenceMatMulTN:$kern_out" \
	"TestCSRAggregateKernelMatchesScatter:$kern_out" \
	"TestCSRAggregateMatchesUnfused:$kern_out" \
	"TestCSRAggregateMulMatchesUnfused:$kern_out" \
	"TestKernelPathsBitIdentical:$kpath_out" \
	"TestTrainersMatchPreSessionGoldens:$golden_out" \
	"TestEntryPointsBuildAndRun/lumos-train-kernels-reference:$ksmoke_out"; do
	name=${gate%%:*}
	out=${gate#*:}
	if ! grep -q -- "--- PASS: $name" <<<"$out"; then
		echo "kernel gate $name did not pass:" >&2
		echo "$out" >&2
		exit 1
	fi
done

# Gossip/topology gates, re-run by name so a renamed or skipped guard fails
# loudly: decentralized-timeline determinism across worker counts under the
# race detector, the gossip-complete ≈ star-sync equivalence check, the
# star-timeline golden re-check (gossip wiring must not perturb the frozen
# hex-float timelines), and the smoke rows for the gossip CLI surface and
# the topologystudy example (which exits non-zero unless every topology
# lands within 5% of the star final at equal rounds).
gossip_out=$(go test -race -run 'TestGossipDeterminismAcrossWorkers|TestGossipCompleteMatchesStarSync' -count=1 -v ./internal/sim)
star_out=$(go test -run 'TestPreFleetTimelineGolden' -count=1 -v ./internal/sim)
gsmoke_out=$(go test -run 'TestEntryPointsBuildAndRun/(lumos-sim-gossip|examples)/topologystudy' -count=1 -v .)
for gate in \
	"TestGossipDeterminismAcrossWorkers:$gossip_out" \
	"TestGossipCompleteMatchesStarSync:$gossip_out" \
	"TestPreFleetTimelineGolden:$star_out" \
	"TestEntryPointsBuildAndRun/lumos-sim-gossip:$gsmoke_out" \
	"TestEntryPointsBuildAndRun/examples/topologystudy:$gsmoke_out"; do
	name=${gate%%:*}
	out=${gate#*:}
	if ! grep -q -- "--- PASS: $name" <<<"$out"; then
		echo "gossip gate $name did not pass:" >&2
		echo "$out" >&2
		exit 1
	fi
done

# Serving-loop gates, re-run by name so a renamed or skipped guard fails
# loudly: the checkpoint/snapshot corruption tables (corrupt files must fail
# with bounded allocation), the hot-swap race suite, and the CLI-level
# train → publish → serve → query → republish round trip.
codec_out=$(go test -run 'TestLoadParamsCorruptLengthFields|TestLoadParamsTruncation' -count=1 -v ./internal/nn)
snap_out=$(go test -run 'TestSnapshotCorruption|TestSnapshotTruncation' -count=1 -v ./internal/snapshot)
swap_out=$(go test -race -run 'TestServeHotSwapRace' -count=1 -v ./internal/serve)
e2e_out=$(go test -run 'TestServePublishServeQueryE2E' -count=1 -v .)
for gate in \
	"TestLoadParamsCorruptLengthFields:$codec_out" \
	"TestLoadParamsTruncation:$codec_out" \
	"TestSnapshotCorruption:$snap_out" \
	"TestSnapshotTruncation:$snap_out" \
	"TestServeHotSwapRace:$swap_out" \
	"TestServePublishServeQueryE2E:$e2e_out"; do
	name=${gate%%:*}
	out=${gate#*:}
	if ! grep -q -- "--- PASS: $name" <<<"$out"; then
		echo "serving-loop gate $name did not pass:" >&2
		echo "$out" >&2
		exit 1
	fi
done

# Report gates: the analyzer/diff/record unit suites by name (critical-path
# attribution under the race detector, the e2e straggler-blame acceptance
# check, the diff identity and doctored-regression tests, and the
# record round trip), plus the lumos-report smoke rows, plus a live CLI
# round trip — record a tiny run, render it, self-diff (must exit 0), then
# doctor the copy's final metric and wall-clock and require a nonzero exit.
report_out=$(go test -race -run 'TestCriticalPath|TestAnalyze|TestE2EStragglerBlameMatchesSlowestDevice|TestDiffSelfIsClean|TestDiffCatchesRegression|TestRunRecordRoundTrip|TestLoadTruncatedTail' -count=1 -v ./internal/report)
rsmoke_out=$(go test -run 'TestEntryPointsBuildAndRun/lumos-report-(run|diff|trace)' -count=1 -v .)
for gate in \
	"TestCriticalPathSyncContended:$report_out" \
	"TestCriticalPathAsyncQuorum:$report_out" \
	"TestCriticalPathGossipDelta:$report_out" \
	"TestAnalyzeUtilization:$report_out" \
	"TestE2EStragglerBlameMatchesSlowestDevice:$report_out" \
	"TestDiffSelfIsClean:$report_out" \
	"TestDiffCatchesRegression:$report_out" \
	"TestRunRecordRoundTrip:$report_out" \
	"TestLoadTruncatedTail:$report_out" \
	"TestEntryPointsBuildAndRun/lumos-report-run:$rsmoke_out" \
	"TestEntryPointsBuildAndRun/lumos-report-diff:$rsmoke_out" \
	"TestEntryPointsBuildAndRun/lumos-report-trace:$rsmoke_out"; do
	name=${gate%%:*}
	out=${gate#*:}
	if ! grep -q -- "--- PASS: $name" <<<"$out"; then
		echo "report gate $name did not pass:" >&2
		echo "$out" >&2
		exit 1
	fi
done

recdir=$(mktemp -d)
trap 'rm -rf "$recdir"' EXIT
go run ./cmd/lumos-sim -dataset facebook -scale 0.005 -rounds 3 -mcmc 10 \
	-fleet zipf -run-out "$recdir/base" >/dev/null
go run ./cmd/lumos-report run "$recdir/base" >/dev/null
go run ./cmd/lumos-report diff "$recdir/base" "$recdir/base" >/dev/null
cp -r "$recdir/base" "$recdir/doctored"
# Perturb the doctored record past both the metric and wall-clock
# thresholds; the diff gate must refuse it.
mkdir -p "$recdir/doctor"
cat >"$recdir/doctor/main.go" <<'EOF'
package main

import (
	"encoding/json"
	"os"
)

func main() {
	path := os.Args[1]
	raw, err := os.ReadFile(path)
	if err != nil {
		panic(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		panic(err)
	}
	m["final_metric"] = m["final_metric"].(float64) - 0.5
	m["wall_clock"] = m["wall_clock"].(float64) * 2
	out, err := json.Marshal(m)
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		panic(err)
	}
}
EOF
go run "$recdir/doctor/main.go" "$recdir/doctored/manifest.json"
if go run ./cmd/lumos-report diff "$recdir/base" "$recdir/doctored" >/dev/null 2>&1; then
	echo "report gate: doctored record passed the diff gate" >&2
	exit 1
fi

go test -race -short ./internal/... ./...
